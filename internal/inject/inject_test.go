package inject

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/hypergraph"
	"repro/internal/metric"
)

func clusteredGraph(t *testing.T, rng *rand.Rand, clusters, per int) *hypergraph.Hypergraph {
	t.Helper()
	b := hypergraph.NewBuilder()
	n := clusters * per
	b.AddUnitNodes(n)
	// dense inside clusters, sparse between
	for c := 0; c < clusters; c++ {
		base := c * per
		for i := 0; i < per; i++ {
			for j := i + 1; j < per; j++ {
				if rng.Float64() < 0.8 {
					b.AddNet("", 1, hypergraph.NodeID(base+i), hypergraph.NodeID(base+j))
				}
			}
		}
	}
	for c := 0; c+1 < clusters; c++ {
		b.AddNet("", 1, hypergraph.NodeID(c*per), hypergraph.NodeID((c+1)*per))
	}
	return b.MustBuild()
}

func specFor(h *hypergraph.Hypergraph, height int) hierarchy.Spec {
	s, err := hierarchy.BinaryTreeSpec(h.TotalSize(), height, hierarchy.GeometricWeights(height, 2), 1.2)
	if err != nil {
		panic(err)
	}
	return s
}

func TestComputeMetricConvergesAndIsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	h := clusteredGraph(t, rng, 4, 4)
	spec := specFor(h, 2)
	m, st, err := ComputeMetric(h, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st)
	}
	if st.Injections == 0 {
		t.Fatal("no injections happened; the zero metric cannot be feasible here")
	}
	if bad := metric.Check(m, spec); bad != nil {
		t.Fatalf("resulting metric infeasible: %v", bad)
	}
	if m.Value() <= 0 {
		t.Fatal("metric value should be positive")
	}
}

func TestComputeMetricDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	h := clusteredGraph(t, rng, 3, 4)
	spec := specFor(h, 2)
	m1, _, err := ComputeMetric(h, spec, Options{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := ComputeMetric(h, spec, Options{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	for e := range m1.D {
		if m1.D[e] != m2.D[e] {
			t.Fatalf("metrics diverge at net %d: %g vs %g", e, m1.D[e], m2.D[e])
		}
	}
	m3, _, err := ComputeMetric(h, spec, Options{Rng: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for e := range m1.D {
		if m1.D[e] != m3.D[e] {
			same = false
			break
		}
	}
	if same {
		t.Log("different seeds produced identical metrics (possible but unusual)")
	}
}

func TestComputeMetricRejectsOversizedNode(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddNode("big", 10)
	b.AddNode("", 1)
	b.AddNet("", 1, 0, 1)
	h := b.MustBuild()
	spec := hierarchy.Spec{Capacity: []int64{4, 16}, Weight: []float64{1, 1}, Branch: []int{2, 2}}
	if _, _, err := ComputeMetric(h, spec, Options{}); err == nil {
		t.Fatal("oversized node accepted")
	}
}

func TestComputeMetricRejectsBadSpec(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddUnitNodes(2)
	b.AddNet("", 1, 0, 1)
	h := b.MustBuild()
	if _, _, err := ComputeMetric(h, hierarchy.Spec{}, Options{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestTrivialInstanceNeedsNoInjection(t *testing.T) {
	// Everything fits in one leaf: g == 0 everywhere, zero injections.
	b := hypergraph.NewBuilder()
	b.AddUnitNodes(3)
	b.AddNet("", 1, 0, 1)
	b.AddNet("", 1, 1, 2)
	h := b.MustBuild()
	spec := hierarchy.Spec{Capacity: []int64{10}, Weight: []float64{1}, Branch: []int{2}}
	m, st, err := ComputeMetric(h, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Injections != 0 {
		t.Fatalf("expected no injections, got %d", st.Injections)
	}
	// Lengths stay at their epsilon initialization.
	for e := range m.D {
		if m.D[e] > 1e-3 {
			t.Fatalf("net %d length %g after no injections", e, m.D[e])
		}
	}
}

func TestZeroCapacityNetIsFreeToCut(t *testing.T) {
	b := hypergraph.NewBuilder()
	b.AddUnitNodes(4)
	b.AddNet("free", 0, 0, 1)
	b.AddNet("", 1, 1, 2)
	b.AddNet("", 1, 2, 3)
	h := b.MustBuild()
	spec := hierarchy.Spec{Capacity: []int64{1, 4}, Weight: []float64{1, 1}, Branch: []int{2, 4}}
	m, st, err := ComputeMetric(h, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("did not converge")
	}
	// The free net must be stretched (the LP can lengthen it at zero cost)
	// and must contribute nothing to the objective.
	if m.D[0] <= m.D[1] {
		t.Fatalf("free net length %g not above paid net %g", m.D[0], m.D[1])
	}
	var paid float64
	for e := 1; e < h.NumNets(); e++ {
		paid += h.NetCapacity(hypergraph.NetID(e)) * m.D[e]
	}
	if math.Abs(m.Value()-paid) > 1e-9 {
		t.Fatalf("free net contributes to Value: %g vs %g", m.Value(), paid)
	}
}

// TestBottleneckNetsGetLongest verifies the qualitative promise of the
// approach: nets bridging clusters saturate first and end up longer than
// intra-cluster nets.
func TestBottleneckNetsGetLongest(t *testing.T) {
	// Two K5 cliques joined by one bridge net.
	b := hypergraph.NewBuilder()
	b.AddUnitNodes(10)
	var bridge hypergraph.NetID
	for c := 0; c < 2; c++ {
		base := c * 5
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddNet("", 1, hypergraph.NodeID(base+i), hypergraph.NodeID(base+j))
			}
		}
	}
	bridge = b.AddNet("bridge", 1, 0, 5)
	h := b.MustBuild()
	spec := hierarchy.Spec{Capacity: []int64{5, 10}, Weight: []float64{1, 2}, Branch: []int{2, 2}}
	m, st, err := ComputeMetric(h, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("did not converge")
	}
	var avgIntra float64
	for e := 0; e < h.NumNets()-1; e++ {
		avgIntra += m.D[e]
	}
	avgIntra /= float64(h.NumNets() - 1)
	if m.D[bridge] <= avgIntra {
		t.Fatalf("bridge length %g not above intra-cluster average %g", m.D[bridge], avgIntra)
	}
}

func TestStatsMaxFlowPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	h := clusteredGraph(t, rng, 3, 3)
	spec := specFor(h, 2)
	_, st, err := ComputeMetric(h, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxFlow <= 0 {
		t.Fatalf("MaxFlow = %g", st.MaxFlow)
	}
	if st.Rounds <= 0 {
		t.Fatalf("Rounds = %d", st.Rounds)
	}
}

func TestNonUnitSizesConverge(t *testing.T) {
	b := hypergraph.NewBuilder()
	sizes := []int64{3, 1, 2, 2, 1, 3}
	for _, s := range sizes {
		b.AddNode("", s)
	}
	for i := 0; i+1 < len(sizes); i++ {
		b.AddNet("", 1, hypergraph.NodeID(i), hypergraph.NodeID(i+1))
	}
	b.AddNet("", 1, 0, 5)
	h := b.MustBuild()
	spec := hierarchy.Spec{Capacity: []int64{4, 12}, Weight: []float64{1, 2}, Branch: []int{2, 2}}
	m, st, err := ComputeMetric(h, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatal("did not converge with non-unit sizes")
	}
	if bad := metric.Check(m, spec); bad != nil {
		t.Fatalf("metric infeasible: %v", bad)
	}
}

func TestMetricValueAboveInducedLowerEnvelope(t *testing.T) {
	// A feasible flow metric's value is at least the LP optimum; sanity-check
	// it is in a plausible range: positive and below the all-cut upper bound.
	rng := rand.New(rand.NewSource(83))
	h := clusteredGraph(t, rng, 4, 4)
	spec := specFor(h, 2)
	m, _, err := ComputeMetric(h, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Value() <= 0 || math.IsInf(m.Value(), 1) || math.IsNaN(m.Value()) {
		t.Fatalf("metric value = %g", m.Value())
	}
}

func BenchmarkComputeMetric(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	hb := hypergraph.NewBuilder()
	const n = 128
	hb.AddUnitNodes(n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j != i {
				hb.AddNet("", 1, hypergraph.NodeID(i), hypergraph.NodeID(j))
			}
		}
	}
	h := hb.MustBuild()
	spec, _ := hierarchy.BinaryTreeSpec(h.TotalSize(), 3, hierarchy.GeometricWeights(3, 2), 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ComputeMetric(h, spec, Options{Rng: rand.New(rand.NewSource(int64(i)))}); err != nil {
			b.Fatal(err)
		}
	}
}

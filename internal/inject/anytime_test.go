package inject

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/metric"
	"repro/internal/obs"
)

// stallOnFirstRound blocks the engine after its first sweep round so a
// short context deadline reliably fires mid-run.
type stallOnFirstRound struct{ d time.Duration }

func (s stallOnFirstRound) Event(e obs.Event) {
	if e.Kind == obs.KindMetricRound && e.Round == 1 {
		time.Sleep(s.d)
	}
}

func TestComputeMetricCtxAlreadyCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	h := clusteredGraph(t, rng, 4, 4)
	spec := specFor(h, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, _, err := ComputeMetricCtx(ctx, h, spec, Options{})
	if m != nil {
		t.Fatal("a context dead at entry should yield no metric")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should wrap context.Canceled, got: %v", err)
	}
}

func TestComputeMetricCtxDeadlineReturnsPartialMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	h := clusteredGraph(t, rng, 12, 16)
	spec := specFor(h, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	// The observer runs synchronously on the engine's goroutine, so
	// stalling on the first sweep round guarantees the deadline expires
	// mid-run on any machine (a fixed fine-grained Delta alone raced the
	// clock on fast hardware).
	m, st, err := ComputeMetricCtx(ctx, h, spec, Options{Delta: 0.001, Observer: stallOnFirstRound{20 * time.Millisecond}})
	if err == nil {
		t.Fatal("an interrupted run must report the interruption")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error should wrap context.DeadlineExceeded, got: %v", err)
	}
	if m == nil {
		t.Fatal("mid-run interruption should salvage the partial metric")
	}
	if len(m.D) != h.NumNets() {
		t.Fatalf("partial metric has %d lengths for %d nets", len(m.D), h.NumNets())
	}
	for e, d := range m.D {
		if d < 0 {
			t.Fatalf("net %d has negative length %g", e, d)
		}
	}
	if st.Converged {
		t.Fatalf("interrupted stats claim convergence: %+v", st)
	}
}

func TestComputeMetricCtxUncancelledMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	h := clusteredGraph(t, rng, 3, 4)
	spec := specFor(h, 2)
	m1, _, err := ComputeMetric(h, spec, Options{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	m2, st, err := ComputeMetricCtx(ctx, h, spec, Options{Rng: rand.New(rand.NewSource(5))})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("expected convergence, stats: %+v", st)
	}
	for e := range m1.D {
		if m1.D[e] != m2.D[e] {
			t.Fatalf("a live context changed the metric at net %d: %g vs %g", e, m1.D[e], m2.D[e])
		}
	}
	if bad := metric.Check(m2, spec); bad != nil {
		t.Fatalf("metric infeasible: %v", bad)
	}
}

package verify

import (
	"context"

	"repro/internal/anytime"
	"repro/internal/hierarchy"
	"repro/internal/htp"
	"repro/internal/metric"
)

// Result re-verifies a solver result end to end: the partition itself
// (Partition), the reported cost against the naive recomputation, the
// Lemma-1 metric identity, and the anytime-contract consistency of
// Result.Stop and Result.Failures. This is the check every emitted solver
// result should pass before anything downstream trusts it.
func Result(res *htp.Result) *Report {
	if res == nil {
		r := &Report{}
		r.fail("result", "nil result")
		return r
	}
	r := Certify(res.Partition, res.Cost)
	checkStop(r, res)
	if r.OK() {
		Lemma1(r, res.Partition)
	}
	return r
}

// checkStop verifies the anytime contract on a successful result: Stop is
// one of the documented reasons (a best-so-far result must always say why
// the run ended), the iteration count is sane, and every recorded failure is
// an actual error. A converged run may still carry failures — contained
// panics whose sibling iterations won — but a result with no reason at all
// escaped the contract.
func checkStop(r *Report, res *htp.Result) {
	switch res.Stop {
	case anytime.StopConverged, anytime.StopMaxRounds, anytime.StopDeadline, anytime.StopCancelled:
	case "":
		r.fail("stop", "result carries no stop reason")
	default:
		r.fail("stop", "unknown stop reason %q", res.Stop)
	}
	if res.Iterations < 1 {
		r.fail("stop", "result reports %d iterations", res.Iterations)
	}
	for i, f := range res.Failures {
		if f == nil {
			r.fail("stop", "Failures[%d] is nil", i)
		}
	}
}

// Lemma1 cross-checks the paper's Lemma 1: the spreading metric induced by a
// partition (d(e) = cost(e)/c(e)) has LP value Σ_e c(e)·d(e) equal to the
// partition's cost. metric.FromPartition and the naive cost recomputation
// share no code, so agreement here certifies both.
func Lemma1(r *Report, p *hierarchy.Partition) {
	induced := metric.FromPartition(p)
	if v := induced.Value(); !SameCost(v, r.Cost) {
		r.fail("lemma1", "induced metric value %.17g != independent cost %.17g", v, r.Cost)
	}
}

// LowerBound cross-checks the paper's Lemma 2 against a reported cost: the
// spreading-metric LP optimum lower-bounds every feasible partition, so a
// cost below the proven bound means producer or bound is wrong. The LP uses
// dense simplex — small instances only. maxRounds caps the cutting-plane
// loop (0 = the LP's default). The bound proven so far is returned (0 when
// the computation failed or was interrupted before proving anything).
func LowerBound(ctx context.Context, r *Report, p *hierarchy.Partition, maxRounds int) float64 {
	lb, err := metric.ExactLowerBoundCtx(ctx, p.H, p.Spec, maxRounds)
	if err != nil {
		r.fail("lowerbound", "LP lower bound failed: %v", err)
		return 0
	}
	// Every relaxation optimum is already a valid bound, converged or not.
	if lb.Value > r.Cost && !SameCost(lb.Value, r.Cost) {
		r.fail("lowerbound", "LP lower bound %.17g exceeds reported cost %.17g", lb.Value, r.Cost)
	}
	return lb.Value
}

// BruteForce cross-checks a reported cost against the exhaustive oracle on a
// tiny instance: no heuristic may beat the optimum, and the optimum itself
// must pass the independent verifier. Exponential — callers guard the size.
func BruteForce(r *Report, p *hierarchy.Partition) {
	opt, optCost, err := htp.BruteForce(p.H, p.Spec)
	if err != nil {
		r.fail("brute", "oracle failed: %v", err)
		return
	}
	if or := Certify(opt, optCost); !or.OK() {
		r.fail("brute", "oracle's own optimum fails verification: %v", or.Err())
		return
	}
	if r.Cost < optCost && !SameCost(r.Cost, optCost) {
		r.fail("brute", "reported cost %.17g beats the exhaustive optimum %.17g", r.Cost, optCost)
	}
}

// Package verify independently re-certifies solver outputs. Every solver in
// this repository certifies its own result with the same incremental code
// that produced it (hierarchy.Partition.Cost, the CostState bookkeeping
// behind FM refinement), so a shared bug — a span miscounted the same way by
// producer and checker — is invisible. HTP quality cannot be certified
// analytically either: even restricted hypergraph partitioning is
// inapproximable, so the only trustworthy certificate for an emitted
// partition is an independent re-check.
//
// This package is that trust boundary. It recomputes hierarchical cost,
// spans, K_l/C_l feasibility, and leaf coverage from scratch with
// deliberately naive code: direct definition-following loops, no incremental
// state, no sharing with hierarchy's CostState or the solvers. It also
// cross-checks solver results against independent oracles (the Lemma-1
// metric identity, the LP lower bound, brute force on tiny instances) and
// checks the anytime contract (Result.Stop / Result.Failures consistency).
//
// cmd/htpcheck exposes the verifier as a CLI; cmd/experiments and
// cmd/htpart run it over every partition they emit.
package verify

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/hierarchy"
	"repro/internal/hypergraph"
)

// CostTol is the relative tolerance used when comparing two independently
// computed costs: the naive sum and the incremental sum accumulate in
// different orders, so they agree only up to float rounding.
const CostTol = 1e-9

// An Issue is one discrepancy found by the verifier.
type Issue struct {
	// Check names the failed check ("cost", "capacity", "coverage", ...).
	Check string
	// Detail describes the discrepancy.
	Detail string
}

func (i Issue) String() string { return i.Check + ": " + i.Detail }

// Report is the outcome of an independent re-verification.
type Report struct {
	// Cost is the naively recomputed hierarchical cost
	// Σ_e Σ_l w_l·span(e,l)·c(e).
	Cost float64
	// LevelCosts is the naively recomputed per-level cost breakdown.
	LevelCosts []float64
	// BlockSizes is the naively recomputed per-vertex assigned size.
	BlockSizes []int64
	// Issues lists every discrepancy found; empty means certified.
	Issues []Issue
}

// OK reports whether the verification found no discrepancies.
func (r *Report) OK() bool { return len(r.Issues) == 0 }

// Err returns nil when the report is clean, otherwise an error listing every
// issue.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, len(r.Issues))
	for i, is := range r.Issues {
		msgs[i] = is.String()
	}
	return fmt.Errorf("verify: %d discrepancies: %s", len(r.Issues), strings.Join(msgs, "; "))
}

func (r *Report) fail(check, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{Check: check, Detail: fmt.Sprintf(format, args...)})
}

// Partition re-verifies a hierarchical tree partition from scratch: tree
// shape, leaf coverage, C_l capacities, K_l branch bounds, and the
// hierarchical cost, each recomputed by direct definition-following code.
// The report's Cost and LevelCosts are valid whenever the structural checks
// pass (cost checks are skipped on a structurally broken partition).
func Partition(p *hierarchy.Partition) *Report {
	r := &Report{}
	if p == nil {
		r.fail("partition", "nil partition")
		return r
	}
	if p.H == nil || p.Tree == nil {
		r.fail("partition", "partition missing hypergraph or tree")
		return r
	}
	if !checkSpec(r, p.Spec) {
		return r
	}
	if !checkTree(r, p) {
		return r
	}
	if !checkCoverage(r, p) {
		return r
	}
	checkSizes(r, p)
	checkBranch(r, p)
	checkCost(r, p)
	return r
}

// Certify is Partition plus a cross-check of the reported cost against the
// naive recomputation.
func Certify(p *hierarchy.Partition, reportedCost float64) *Report {
	r := Partition(p)
	if !r.OK() {
		return r
	}
	if !SameCost(reportedCost, r.Cost) {
		r.fail("cost", "reported cost %.17g but independent recomputation finds %.17g", reportedCost, r.Cost)
	}
	return r
}

// Certifier adapts Certify to the plain-error callback shape that
// internal/flowrefine (and anything else below the oracle layer) accepts —
// this package imports internal/htp for the solver oracles, so packages on
// htp's import path take certification as an injected func rather than
// importing verify directly. The returned func is nil-safe on its own and
// returns the first issue of a failed report.
func Certifier() func(p *hierarchy.Partition, cost float64) error {
	return func(p *hierarchy.Partition, cost float64) error {
		return Certify(p, cost).Err()
	}
}

// SameCost reports whether two independently computed costs agree within
// CostTol, relative to the larger magnitude. NaN never agrees with anything.
func SameCost(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= CostTol*scale || diff == 0
}

// checkSpec re-validates the per-level parameters without calling
// Spec.Validate, so a bug there cannot hide a malformed spec from the
// verifier.
func checkSpec(r *Report, s hierarchy.Spec) bool {
	ok := true
	L := len(s.Capacity)
	if L == 0 {
		r.fail("spec", "empty capacity vector")
		return false
	}
	if len(s.Weight) != L || len(s.Branch) != L {
		r.fail("spec", "slice lengths differ: cap=%d weight=%d branch=%d", L, len(s.Weight), len(s.Branch))
		return false
	}
	for l := 0; l < L; l++ {
		if s.Capacity[l] <= 0 {
			r.fail("spec", "C_%d = %d not positive", l, s.Capacity[l])
			ok = false
		}
		if l > 0 && s.Capacity[l] < s.Capacity[l-1] {
			r.fail("spec", "C_%d = %d < C_%d = %d", l, s.Capacity[l], l-1, s.Capacity[l-1])
			ok = false
		}
		if s.Weight[l] < 0 || math.IsNaN(s.Weight[l]) || math.IsInf(s.Weight[l], 0) {
			r.fail("spec", "w_%d = %g not a finite non-negative weight", l, s.Weight[l])
			ok = false
		}
		if s.Branch[l] < 2 {
			r.fail("spec", "K_%d = %d < 2", l+1, s.Branch[l])
			ok = false
		}
	}
	return ok
}

// checkTree re-verifies the layered-tree invariants by walking the raw
// parent/level/children relations: single root at the highest level, every
// child exactly one level below its parent, parent and child lists mutually
// consistent, and every vertex reaching the root (no cycles).
func checkTree(r *Report, p *hierarchy.Partition) bool {
	t := p.Tree
	nv := t.NumVertices()
	if nv == 0 {
		r.fail("tree", "no vertices")
		return false
	}
	root := t.Root()
	if t.Parent(root) != -1 {
		r.fail("tree", "root %d has parent %d", root, t.Parent(root))
		return false
	}
	rootLevel := t.Level(root)
	if rootLevel < 0 {
		r.fail("tree", "root level %d negative", rootLevel)
		return false
	}
	if rootLevel > len(p.Spec.Capacity) {
		r.fail("tree", "root level %d exceeds spec height %d", rootLevel, len(p.Spec.Capacity))
		return false
	}
	ok := true
	for q := 0; q < nv; q++ {
		par := t.Parent(q)
		if q == root {
			continue
		}
		if par < 0 || par >= nv {
			r.fail("tree", "vertex %d has out-of-range parent %d", q, par)
			return false
		}
		if t.Level(par) != t.Level(q)+1 {
			r.fail("tree", "vertex %d at level %d under parent %d at level %d",
				q, t.Level(q), par, t.Level(par))
			ok = false
		}
		found := false
		for _, c := range t.Children(par) {
			if int(c) == q {
				found = true
				break
			}
		}
		if !found {
			r.fail("tree", "vertex %d missing from parent %d's child list", q, par)
			ok = false
		}
	}
	for q := 0; q < nv; q++ {
		for _, c := range t.Children(q) {
			if int(c) < 0 || int(c) >= nv {
				r.fail("tree", "vertex %d has out-of-range child %d", q, c)
				return false
			}
			if t.Parent(int(c)) != q {
				r.fail("tree", "vertex %d lists child %d whose parent is %d", q, c, t.Parent(int(c)))
				ok = false
			}
		}
	}
	// Every vertex must reach the root in at most nv parent steps.
	for q := 0; q < nv; q++ {
		v, steps := q, 0
		for v != root {
			v = t.Parent(v)
			steps++
			if v < 0 || steps > nv {
				r.fail("tree", "vertex %d does not reach the root (cycle or broken chain)", q)
				return false
			}
		}
	}
	return ok
}

// checkCoverage re-verifies leaf coverage: every hypergraph node is assigned
// to an in-range, level-0 tree vertex.
func checkCoverage(r *Report, p *hierarchy.Partition) bool {
	n := p.H.NumNodes()
	if len(p.LeafOf) != n {
		r.fail("coverage", "LeafOf has %d entries for %d nodes", len(p.LeafOf), n)
		return false
	}
	ok := true
	for v := 0; v < n; v++ {
		leaf := p.LeafOf[v]
		switch {
		case leaf < 0:
			r.fail("coverage", "node %d unassigned", v)
			ok = false
		case int(leaf) >= p.Tree.NumVertices():
			r.fail("coverage", "node %d assigned to out-of-range vertex %d", v, leaf)
			ok = false
		case p.Tree.Level(int(leaf)) != 0:
			r.fail("coverage", "node %d assigned to non-leaf vertex %d (level %d)",
				v, leaf, p.Tree.Level(int(leaf)))
			ok = false
		}
	}
	return ok
}

// checkSizes recomputes every block's total assigned size by walking each
// node's root path and re-verifies the C_l capacity bounds (the root level is
// unbounded).
func checkSizes(r *Report, p *hierarchy.Partition) {
	nv := p.Tree.NumVertices()
	sizes := make([]int64, nv)
	for v := 0; v < p.H.NumNodes(); v++ {
		s := p.H.NodeSize(hypergraph.NodeID(v))
		if s <= 0 {
			r.fail("capacity", "node %d has non-positive size %d", v, s)
			continue
		}
		for q := int(p.LeafOf[v]); q >= 0; q = p.Tree.Parent(q) {
			sizes[q] += s
		}
	}
	L := len(p.Spec.Capacity)
	for q := 0; q < nv; q++ {
		l := p.Tree.Level(q)
		if l < L && sizes[q] > p.Spec.Capacity[l] {
			r.fail("capacity", "vertex %d at level %d holds %d > C_%d = %d",
				q, l, sizes[q], l, p.Spec.Capacity[l])
		}
	}
	r.BlockSizes = sizes
}

// checkBranch re-verifies the K_l branch bounds: a vertex at level l+1 has at
// most Branch[l] children.
func checkBranch(r *Report, p *hierarchy.Partition) {
	for q := 0; q < p.Tree.NumVertices(); q++ {
		l := p.Tree.Level(q)
		if l < 1 {
			continue
		}
		if k := len(p.Tree.Children(q)); l-1 < len(p.Spec.Branch) && k > p.Spec.Branch[l-1] {
			r.fail("branch", "vertex %d at level %d has %d > K_%d = %d children",
				q, l, k, l, p.Spec.Branch[l-1])
		}
	}
}

// checkCost recomputes the hierarchical cost from its definition:
// cost = Σ_e Σ_l w_l·span(e,l)·c(e), where span(e,l) is the number of
// distinct level-l blocks holding pins of e (0 when all pins share one
// block), summed over the levels below the root.
func checkCost(r *Report, p *hierarchy.Partition) {
	top := p.Tree.Level(p.Tree.Root())
	if L := len(p.Spec.Capacity); top > L {
		top = L
	}
	level := make([]float64, top)
	var total float64
	for e := 0; e < p.H.NumNets(); e++ {
		c := p.H.NetCapacity(hypergraph.NetID(e))
		if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			r.fail("cost", "net %d has invalid capacity %g", e, c)
			continue
		}
		for l := 0; l < top; l++ {
			span := naiveSpan(p, hypergraph.NetID(e), l)
			contrib := p.Spec.Weight[l] * float64(span) * c
			level[l] += contrib
			total += contrib
		}
	}
	if math.IsNaN(total) || math.IsInf(total, 0) || total < 0 {
		r.fail("cost", "recomputed cost %g is not a finite non-negative number", total)
	}
	r.Cost = total
	r.LevelCosts = level
}

// naiveSpan counts the distinct level-l blocks containing pins of net e by
// walking each pin's ancestor chain — no caching, no incremental counts.
func naiveSpan(p *hierarchy.Partition, e hypergraph.NetID, level int) int {
	blocks := map[int]struct{}{}
	for _, v := range p.H.Pins(e) {
		q := int(p.LeafOf[v])
		for p.Tree.Level(q) < level {
			q = p.Tree.Parent(q)
		}
		blocks[q] = struct{}{}
	}
	if len(blocks) <= 1 {
		return 0
	}
	return len(blocks)
}

package verify

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/circuits"
	"repro/internal/hierarchy"
	"repro/internal/htp"
	"repro/internal/hypergraph"
)

// tinyInstance returns a 6-node, 2-level instance small enough for every
// oracle.
func tinyInstance(t *testing.T) (*hypergraph.Hypergraph, hierarchy.Spec) {
	t.Helper()
	b := hypergraph.NewBuilder()
	b.AddUnitNodes(6)
	b.AddNet("", 1, 0, 1)
	b.AddNet("", 1, 1, 2)
	b.AddNet("", 2, 2, 3)
	b.AddNet("", 1, 3, 4)
	b.AddNet("", 1, 4, 5)
	b.AddNet("", 3, 0, 5)
	h := b.MustBuild()
	spec := hierarchy.Spec{Capacity: []int64{2, 4}, Weight: []float64{1, 2}, Branch: []int{2, 2}}
	return h, spec
}

func solveTiny(t *testing.T) (*hypergraph.Hypergraph, hierarchy.Spec, *htp.Result) {
	t.Helper()
	h, spec := tinyInstance(t)
	res, err := htp.Flow(h, spec, htp.FlowOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	return h, spec, res
}

func TestCleanResultCertifies(t *testing.T) {
	_, _, res := solveTiny(t)
	rep := Result(res)
	if !rep.OK() {
		t.Fatalf("clean solver result rejected: %v", rep.Err())
	}
	if !SameCost(rep.Cost, res.Cost) {
		t.Fatalf("naive cost %g vs solver cost %g", rep.Cost, res.Cost)
	}
	if rep.Err() != nil {
		t.Fatal("clean report returned non-nil Err")
	}
}

func TestNaiveCostMatchesIncrementalOnCircuit(t *testing.T) {
	h := circuits.Generate(circuits.ISCAS85[0], 1)
	spec, err := hierarchy.BinaryTreeSpec(h.TotalSize(), 4, hierarchy.GeometricWeights(4, 2), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := htp.GFM(h, spec, htp.GFMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Result(res)
	if !rep.OK() {
		t.Fatalf("GFM result on %s rejected: %v", circuits.ISCAS85[0].Name, rep.Err())
	}
	// Per-level breakdown must agree with the incremental one too.
	inc := res.Partition.LevelCosts()
	if len(inc) != len(rep.LevelCosts) {
		t.Fatalf("level count %d vs %d", len(inc), len(rep.LevelCosts))
	}
	for l := range inc {
		if !SameCost(inc[l], rep.LevelCosts[l]) {
			t.Fatalf("level %d: %g vs %g", l, inc[l], rep.LevelCosts[l])
		}
	}
}

func TestDetectsWrongReportedCost(t *testing.T) {
	_, _, res := solveTiny(t)
	rep := Certify(res.Partition, res.Cost*1.5+1)
	if rep.OK() {
		t.Fatal("inflated cost accepted")
	}
	wantIssue(t, rep, "cost")
}

func TestDetectsCapacityViolation(t *testing.T) {
	_, _, res := solveTiny(t)
	p := res.Partition.Clone()
	// Cram every node into node 0's leaf: blows C_0 = 2.
	leaf := p.LeafOf[0]
	for v := range p.LeafOf {
		p.LeafOf[v] = leaf
	}
	rep := Partition(p)
	if rep.OK() {
		t.Fatal("capacity violation accepted")
	}
	wantIssue(t, rep, "capacity")
}

func TestDetectsUnassignedNode(t *testing.T) {
	_, _, res := solveTiny(t)
	p := res.Partition.Clone()
	p.LeafOf[3] = -1
	rep := Partition(p)
	if rep.OK() {
		t.Fatal("unassigned node accepted")
	}
	wantIssue(t, rep, "coverage")
}

func TestDetectsNonLeafAssignment(t *testing.T) {
	_, _, res := solveTiny(t)
	p := res.Partition.Clone()
	p.LeafOf[0] = int32(p.Tree.Root())
	if p.Tree.Level(p.Tree.Root()) == 0 {
		t.Skip("degenerate tree: root is a leaf")
	}
	rep := Partition(p)
	if rep.OK() {
		t.Fatal("non-leaf assignment accepted")
	}
	wantIssue(t, rep, "coverage")
}

func TestDetectsBranchViolation(t *testing.T) {
	h, spec := tinyInstance(t)
	// Hand-build a tree whose root has 3 children with K = 2.
	tree := hierarchy.NewTree(2)
	l1a := tree.AddChild(tree.Root())
	l1b := tree.AddChild(tree.Root())
	l1c := tree.AddChild(tree.Root())
	leaves := []int{tree.AddChild(l1a), tree.AddChild(l1b), tree.AddChild(l1c)}
	p := hierarchy.NewPartition(h, spec, tree)
	for v := 0; v < h.NumNodes(); v++ {
		p.Assign(hypergraph.NodeID(v), leaves[v%3])
	}
	rep := Partition(p)
	if rep.OK() {
		t.Fatal("branch-bound violation accepted")
	}
	wantIssue(t, rep, "branch")
}

func TestDetectsStopInconsistency(t *testing.T) {
	_, _, res := solveTiny(t)
	res.Stop = ""
	if rep := Result(res); rep.OK() {
		t.Fatal("missing stop reason accepted")
	}
	res.Stop = "exploded"
	if rep := Result(res); rep.OK() {
		t.Fatal("unknown stop reason accepted")
	}
	res.Stop = "converged"
	res.Iterations = 0
	if rep := Result(res); rep.OK() {
		t.Fatal("zero iterations accepted")
	}
}

func TestDetectsNilResultAndPartition(t *testing.T) {
	if rep := Result(nil); rep.OK() {
		t.Fatal("nil result accepted")
	}
	if rep := Partition(nil); rep.OK() {
		t.Fatal("nil partition accepted")
	}
}

func TestDetectsBadSpec(t *testing.T) {
	_, _, res := solveTiny(t)
	p := res.Partition.Clone()
	p.Spec = hierarchy.Spec{Capacity: []int64{2, 4}, Weight: []float64{1}, Branch: []int{2, 2}}
	rep := Partition(p)
	if rep.OK() {
		t.Fatal("mismatched spec slices accepted")
	}
	wantIssue(t, rep, "spec")
}

func TestReportErrMentionsEveryIssue(t *testing.T) {
	r := &Report{}
	r.fail("cost", "a")
	r.fail("branch", "b")
	err := r.Err()
	if err == nil {
		t.Fatal("expected error")
	}
	for _, want := range []string{"cost", "branch", "2 discrepancies"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestSameCost(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{100, 100 * (1 + 1e-12), true},
		{100, 101, false},
		{1e-12, 2e-12, false}, // tiny but relatively far apart
		{math.NaN(), math.NaN(), false},
		{math.Inf(1), math.Inf(1), false},
	}
	for _, c := range cases {
		if got := SameCost(c.a, c.b); got != c.want {
			t.Errorf("SameCost(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMetamorphicEquivariance(t *testing.T) {
	_, _, res := solveTiny(t)
	p := res.Partition
	base := Partition(p)
	if !base.OK() {
		t.Fatal(base.Err())
	}
	rng := rand.New(rand.NewSource(42))

	// Node relabeling: permute node IDs, carry the partition over.
	perm := rng.Perm(p.H.NumNodes())
	relabeled, err := RelabelNodes(p.H, perm)
	if err != nil {
		t.Fatal(err)
	}
	q, err := MapPartition(p, relabeled, perm)
	if err != nil {
		t.Fatal(err)
	}
	if rep := Partition(q); !rep.OK() || rep.Cost != base.Cost {
		t.Fatalf("node relabeling changed cost: %v -> %v (%v)", base.Cost, rep.Cost, rep.Err())
	}

	// Net relabeling leaves the same partition's cost untouched.
	netPerm := rng.Perm(p.H.NumNets())
	netRelabeled, err := RelabelNets(p.H, netPerm)
	if err != nil {
		t.Fatal(err)
	}
	q2 := p.Clone()
	q2.H = netRelabeled
	if rep := Partition(q2); !rep.OK() || rep.Cost != base.Cost {
		t.Fatalf("net relabeling changed cost: %v -> %v (%v)", base.Cost, rep.Cost, rep.Err())
	}

	// Pin shuffles are invisible to set-valued spans.
	shuffled, err := ShufflePins(p.H, rng)
	if err != nil {
		t.Fatal(err)
	}
	q3 := p.Clone()
	q3.H = shuffled
	if rep := Partition(q3); !rep.OK() || rep.Cost != base.Cost {
		t.Fatalf("pin shuffle changed cost: %v -> %v (%v)", base.Cost, rep.Cost, rep.Err())
	}

	// Power-of-two capacity rescaling scales the cost exactly.
	scaled, err := ScaleCapacities(p.H, 4)
	if err != nil {
		t.Fatal(err)
	}
	q4 := p.Clone()
	q4.H = scaled
	if rep := Partition(q4); !rep.OK() || rep.Cost != 4*base.Cost {
		t.Fatalf("capacity rescale: want %v, got %v (%v)", 4*base.Cost, rep.Cost, rep.Err())
	}
}

func TestTransformValidation(t *testing.T) {
	h, _ := tinyInstance(t)
	if _, err := RelabelNodes(h, []int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := RelabelNodes(h, []int{0, 0, 1, 2, 3, 4}); err == nil {
		t.Fatal("repeated entry accepted")
	}
	if _, err := RelabelNets(h, []int{9, 1, 2, 3, 4, 5}); err == nil {
		t.Fatal("out-of-range entry accepted")
	}
	if _, err := ScaleCapacities(h, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func wantIssue(t *testing.T, r *Report, check string) {
	t.Helper()
	for _, is := range r.Issues {
		if is.Check == check {
			return
		}
	}
	t.Fatalf("no %q issue in %v", check, r.Issues)
}

package verify

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/anytime"
	"repro/internal/circuits"
	"repro/internal/hierarchy"
	"repro/internal/htp"
)

// TestSalvagedResultsPassIndependentVerification is the ISSUE's salvage
// property: whatever deadline interrupts FlowCtx, any result it returns —
// converged, best-so-far, or salvaged from a partial metric — must pass the
// full independent verifier. No partially-built tree may ever escape with a
// capacity, coverage, or cost discrepancy; runs interrupted before any
// partition exists must report ErrNoPartition instead of a result.
func TestSalvagedResultsPassIndependentVerification(t *testing.T) {
	h := circuits.Generate(circuits.ISCAS85[0], 1)
	spec, err := hierarchy.BinaryTreeSpec(h.TotalSize(), 4, hierarchy.GeometricWeights(4, 2), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	deadlines := []time.Duration{
		50 * time.Microsecond, 200 * time.Microsecond, 1 * time.Millisecond,
		5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond,
	}
	var salvaged, errored, verified int
	for _, d := range deadlines {
		for seed := int64(1); seed <= 4; seed++ {
			ctx, cancel := context.WithTimeout(context.Background(), d)
			res, err := htp.FlowCtx(ctx, h, spec, htp.FlowOptions{Iterations: 4, Seed: seed})
			cancel()
			if err != nil {
				if !errors.Is(err, anytime.ErrNoPartition) {
					t.Fatalf("deadline %v seed %d: error does not wrap ErrNoPartition: %v", d, seed, err)
				}
				errored++
				continue
			}
			if res.Stop != anytime.StopConverged {
				salvaged++
			}
			rep := Result(res)
			if !rep.OK() {
				t.Fatalf("deadline %v seed %d (%s): escaped verification: %v", d, seed, res.Stop, rep.Err())
			}
			verified++
		}
	}
	t.Logf("verified %d results (%d interrupted before convergence), %d runs had nothing to salvage",
		verified, salvaged, errored)
	if verified == 0 {
		t.Fatal("every run errored; deadlines too tight to exercise the property")
	}
}

// GFM and RFM build exactly one partition, so cancellation before completion
// has nothing to salvage: the error must wrap ErrNoPartition, never a
// half-assigned partition.
func TestSingleShotCancellationYieldsNoPartition(t *testing.T) {
	h := circuits.Generate(circuits.ISCAS85[0], 1)
	spec, err := hierarchy.BinaryTreeSpec(h.TotalSize(), 4, hierarchy.GeometricWeights(4, 2), 1.1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no solver may produce anything
	if res, err := htp.GFMCtx(ctx, h, spec, htp.GFMOptions{}); err == nil {
		t.Fatalf("GFM returned a result (%v) under a dead context", res.Cost)
	} else if !errors.Is(err, anytime.ErrNoPartition) {
		t.Fatalf("GFM error does not wrap ErrNoPartition: %v", err)
	}
	if res, err := htp.RFMCtx(ctx, h, spec, htp.RFMOptions{}); err == nil {
		t.Fatalf("RFM returned a result (%v) under a dead context", res.Cost)
	} else if !errors.Is(err, anytime.ErrNoPartition) {
		t.Fatalf("RFM error does not wrap ErrNoPartition: %v", err)
	}
}

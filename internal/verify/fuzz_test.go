package verify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hierarchy"
	"repro/internal/htp"
	"repro/internal/hypergraph"
)

// FuzzEvalEquivariance drives random integer-weighted instances through the
// metamorphic transforms and demands bit-for-bit equal costs from both the
// naive certifier and the incremental evaluator. Integer capacities and
// weights keep every per-net cost term exactly representable, so float sums
// may reorder freely without rounding and exact equality is the right
// assertion; the capacity rescale uses a power of two for the same reason.
func FuzzEvalEquivariance(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(10), uint8(1))
	f.Add(int64(42), uint8(12), uint8(20), uint8(3))
	f.Add(int64(7), uint8(4), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nodes, nets, scaleExp uint8) {
		n := 2 + int(nodes)%14  // 2..15 nodes
		m := 1 + int(nets)%24   // 1..24 nets
		factor := math.Ldexp(1, int(scaleExp)%8) // 2^0 .. 2^7
		rng := rand.New(rand.NewSource(seed))

		b := hypergraph.NewBuilder()
		b.AddUnitNodes(n)
		for e := 0; e < m; e++ {
			deg := 2 + rng.Intn(3)
			perm := rng.Perm(n)
			if deg > n {
				deg = n
			}
			if deg < 2 {
				return
			}
			pins := make([]hypergraph.NodeID, deg)
			for i := 0; i < deg; i++ {
				pins[i] = hypergraph.NodeID(perm[i])
			}
			b.AddNet("", float64(1+rng.Intn(8)), pins...)
		}
		h, err := b.Build()
		if err != nil {
			t.Fatalf("generator produced invalid instance: %v", err)
		}
		spec, err := hierarchy.BinaryTreeSpec(h.TotalSize(), 2, hierarchy.GeometricWeights(2, 2), 1.2)
		if err != nil {
			return // degenerate size for this depth; not the property under test
		}
		res, err := htp.GFM(h, spec, htp.GFMOptions{Seed: seed})
		if err != nil {
			return
		}
		p := res.Partition

		base := Partition(p)
		if !base.OK() {
			t.Fatalf("solver emitted an invalid partition: %v", base.Err())
		}
		if base.Cost != p.Cost() {
			t.Fatalf("naive cost %.17g != incremental cost %.17g", base.Cost, p.Cost())
		}

		// Node relabeling.
		perm := rng.Perm(n)
		relabeled, err := RelabelNodes(h, perm)
		if err != nil {
			t.Fatal(err)
		}
		q, err := MapPartition(p, relabeled, perm)
		if err != nil {
			t.Fatal(err)
		}
		if rep := Partition(q); !rep.OK() || rep.Cost != base.Cost {
			t.Fatalf("node relabeling: cost %.17g -> %.17g (%v)", base.Cost, rep.Cost, rep.Err())
		}

		// Net relabeling.
		netPerm := rng.Perm(h.NumNets())
		netRelabeled, err := RelabelNets(h, netPerm)
		if err != nil {
			t.Fatal(err)
		}
		q2 := p.Clone()
		q2.H = netRelabeled
		if rep := Partition(q2); !rep.OK() || rep.Cost != base.Cost {
			t.Fatalf("net relabeling: cost %.17g -> %.17g (%v)", base.Cost, rep.Cost, rep.Err())
		}

		// Pin shuffle.
		shuffled, err := ShufflePins(h, rng)
		if err != nil {
			t.Fatal(err)
		}
		q3 := p.Clone()
		q3.H = shuffled
		if rep := Partition(q3); !rep.OK() || rep.Cost != base.Cost {
			t.Fatalf("pin shuffle: cost %.17g -> %.17g (%v)", base.Cost, rep.Cost, rep.Err())
		}

		// Power-of-two capacity rescale.
		scaled, err := ScaleCapacities(h, factor)
		if err != nil {
			t.Fatal(err)
		}
		q4 := p.Clone()
		q4.H = scaled
		if rep := Partition(q4); !rep.OK() || rep.Cost != factor*base.Cost {
			t.Fatalf("rescale by %g: want %.17g, got %.17g (%v)",
				factor, factor*base.Cost, rep.Cost, rep.Err())
		}

		// Lemma 1 must survive every transform too.
		for _, v := range []*hierarchy.Partition{p, q, q2, q3} {
			rep := Partition(v)
			Lemma1(rep, v)
			if !rep.OK() {
				t.Fatalf("Lemma 1 broke under a transform: %v", rep.Err())
			}
		}

		// Determinism: the same seed must reproduce the same result bit for bit.
		res2, err := htp.GFM(h, spec, htp.GFMOptions{Seed: seed})
		if err != nil {
			t.Fatalf("second run failed where first succeeded: %v", err)
		}
		if res2.Cost != res.Cost {
			t.Fatalf("nondeterministic solve: %.17g then %.17g", res.Cost, res2.Cost)
		}
	})
}

package verify

import (
	"fmt"
	"math/rand"

	"repro/internal/hierarchy"
	"repro/internal/hypergraph"
)

// Metamorphic transforms: instance rewrites that must leave hierarchical
// costs invariant. A partition's cost depends only on which nodes share
// which nets and blocks, so relabeling nodes or nets, shuffling pin order
// within a net, and rescaling all capacities by λ (cost scales by exactly λ)
// are equivariances of every evaluator in the repository. The fuzz targets
// in this package and at the facade drive random instances through these
// transforms and demand bit-for-bit equal costs — exact as long as the
// weights and capacities are integer-valued (or λ a power of two), since the
// per-net terms are then exactly representable and their sums reorder
// without rounding.

// RelabelNodes rebuilds h with node IDs permuted: new node perm[v] is old
// node v. Net order and pin order are preserved (pins are rewritten through
// the permutation).
func RelabelNodes(h *hypergraph.Hypergraph, perm []int) (*hypergraph.Hypergraph, error) {
	n := h.NumNodes()
	if err := checkPerm(perm, n); err != nil {
		return nil, fmt.Errorf("verify: node permutation: %w", err)
	}
	inv := make([]int, n) // inv[mapped] = old
	for old, mapped := range perm {
		inv[mapped] = old
	}
	b := hypergraph.NewBuilder()
	for v := 0; v < n; v++ {
		old := hypergraph.NodeID(inv[v])
		b.AddNode(h.NodeName(old), h.NodeSize(old))
	}
	for e := 0; e < h.NumNets(); e++ {
		pins := h.Pins(hypergraph.NetID(e))
		mapped := make([]hypergraph.NodeID, len(pins))
		for i, v := range pins {
			mapped[i] = hypergraph.NodeID(perm[v])
		}
		b.AddNet(h.NetName(hypergraph.NetID(e)), h.NetCapacity(hypergraph.NetID(e)), mapped...)
	}
	return b.Build()
}

// RelabelNets rebuilds h with net IDs permuted: new net perm[e] is old net
// e. Nodes and pin order are untouched.
func RelabelNets(h *hypergraph.Hypergraph, perm []int) (*hypergraph.Hypergraph, error) {
	m := h.NumNets()
	if err := checkPerm(perm, m); err != nil {
		return nil, fmt.Errorf("verify: net permutation: %w", err)
	}
	inv := make([]int, m)
	for old, mapped := range perm {
		inv[mapped] = old
	}
	b := hypergraph.NewBuilder()
	for v := 0; v < h.NumNodes(); v++ {
		b.AddNode(h.NodeName(hypergraph.NodeID(v)), h.NodeSize(hypergraph.NodeID(v)))
	}
	for e := 0; e < m; e++ {
		old := hypergraph.NetID(inv[e])
		b.AddNet(h.NetName(old), h.NetCapacity(old), h.Pins(old)...)
	}
	return b.Build()
}

// ShufflePins rebuilds h with the pin order inside every net permuted by
// rng. Spans are sets, so no evaluator may care.
func ShufflePins(h *hypergraph.Hypergraph, rng *rand.Rand) (*hypergraph.Hypergraph, error) {
	b := hypergraph.NewBuilder()
	for v := 0; v < h.NumNodes(); v++ {
		b.AddNode(h.NodeName(hypergraph.NodeID(v)), h.NodeSize(hypergraph.NodeID(v)))
	}
	for e := 0; e < h.NumNets(); e++ {
		pins := append([]hypergraph.NodeID(nil), h.Pins(hypergraph.NetID(e))...)
		rng.Shuffle(len(pins), func(i, j int) { pins[i], pins[j] = pins[j], pins[i] })
		b.AddNet(h.NetName(hypergraph.NetID(e)), h.NetCapacity(hypergraph.NetID(e)), pins...)
	}
	return b.Build()
}

// ScaleCapacities rebuilds h with every net capacity multiplied by factor;
// all costs scale by exactly factor (bit-for-bit when factor is a power of
// two).
func ScaleCapacities(h *hypergraph.Hypergraph, factor float64) (*hypergraph.Hypergraph, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("verify: capacity scale factor %g must be positive", factor)
	}
	b := hypergraph.NewBuilder()
	for v := 0; v < h.NumNodes(); v++ {
		b.AddNode(h.NodeName(hypergraph.NodeID(v)), h.NodeSize(hypergraph.NodeID(v)))
	}
	for e := 0; e < h.NumNets(); e++ {
		b.AddNet(h.NetName(hypergraph.NetID(e)), h.NetCapacity(hypergraph.NetID(e))*factor,
			h.Pins(hypergraph.NetID(e))...)
	}
	return b.Build()
}

// MapPartition carries a partition of h over to a node-relabeled instance
// relabeled (built with RelabelNodes(h, perm)): the tree is cloned and new
// node perm[v] inherits old node v's leaf. The two partitions must have
// bit-for-bit equal costs when capacities and weights are integer-valued.
func MapPartition(p *hierarchy.Partition, relabeled *hypergraph.Hypergraph, perm []int) (*hierarchy.Partition, error) {
	if relabeled.NumNodes() != p.H.NumNodes() {
		return nil, fmt.Errorf("verify: relabeled instance has %d nodes, partition covers %d",
			relabeled.NumNodes(), p.H.NumNodes())
	}
	if err := checkPerm(perm, p.H.NumNodes()); err != nil {
		return nil, fmt.Errorf("verify: node permutation: %w", err)
	}
	q := p.Clone()
	q.H = relabeled
	for old, leaf := range p.LeafOf {
		q.LeafOf[perm[old]] = leaf
	}
	return q, nil
}

// checkPerm verifies perm is a permutation of 0..n-1.
func checkPerm(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for i, v := range perm {
		if v < 0 || v >= n {
			return fmt.Errorf("entry %d = %d out of range", i, v)
		}
		if seen[v] {
			return fmt.Errorf("entry %d = %d repeated", i, v)
		}
		seen[v] = true
	}
	return nil
}

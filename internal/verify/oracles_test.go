package verify

import (
	"context"
	"testing"

	"repro/internal/circuits"
	"repro/internal/htp"
)

func TestLemma1OnFigure2(t *testing.T) {
	p := circuits.Figure2Partition()
	rep := Partition(p)
	if !rep.OK() {
		t.Fatal(rep.Err())
	}
	Lemma1(rep, p)
	if !rep.OK() {
		t.Fatalf("Lemma 1 fails on the paper's worked example: %v", rep.Err())
	}
}

func TestLemma1DetectsMismatchedCost(t *testing.T) {
	p := circuits.Figure2Partition()
	rep := Partition(p)
	rep.Cost *= 2 // simulate a producer that mis-reported its cost
	Lemma1(rep, p)
	if rep.OK() {
		t.Fatal("Lemma 1 accepted a doubled cost")
	}
	wantIssue(t, rep, "lemma1")
}

func TestLowerBoundHolds(t *testing.T) {
	for name, mk := range map[string]func(t *testing.T) *htp.Result{
		"flow": func(t *testing.T) *htp.Result { _, _, r := solveTiny(t); return r },
		"gfm": func(t *testing.T) *htp.Result {
			h, spec := tinyInstance(t)
			r, err := htp.GFM(h, spec, htp.GFMOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return r
		},
	} {
		t.Run(name, func(t *testing.T) {
			res := mk(t)
			rep := Result(res)
			lb := LowerBound(context.Background(), rep, res.Partition, 0)
			if !rep.OK() {
				t.Fatal(rep.Err())
			}
			if lb <= 0 {
				t.Fatalf("LP proved no bound (%g) on an instance with nonzero cost %g", lb, res.Cost)
			}
		})
	}
}

func TestLowerBoundDetectsImpossiblyGoodCost(t *testing.T) {
	_, _, res := solveTiny(t)
	rep := Result(res)
	rep.Cost = res.Cost / 100 // a cost the LP bound must contradict
	lb := LowerBound(context.Background(), rep, res.Partition, 0)
	if rep.OK() {
		t.Fatalf("LP bound %g did not flag fabricated cost %g", lb, rep.Cost)
	}
	wantIssue(t, rep, "lowerbound")
}

func TestBruteForceHolds(t *testing.T) {
	_, _, res := solveTiny(t)
	rep := Result(res)
	BruteForce(rep, res.Partition)
	if !rep.OK() {
		t.Fatal(rep.Err())
	}
}

func TestBruteForceDetectsSubOptimalClaim(t *testing.T) {
	_, _, res := solveTiny(t)
	rep := Result(res)
	rep.Cost = 0.01 // claims to beat the exhaustive optimum
	BruteForce(rep, res.Partition)
	if rep.OK() {
		t.Fatal("brute-force oracle accepted an impossible cost")
	}
	wantIssue(t, rep, "brute")
}

// TestOracleChainOnFigure2 runs the certifier, Lemma 1, and the LP bound on
// the paper's worked example (16 nodes — past the exhaustive oracle's reach):
// LP optimum <= figure cost == naive cost == Lemma-1 metric value.
func TestOracleChainOnFigure2(t *testing.T) {
	p := circuits.Figure2Partition()
	rep := Certify(p, p.Cost())
	Lemma1(rep, p)
	lb := LowerBound(context.Background(), rep, p, 0)
	if !rep.OK() {
		t.Fatal(rep.Err())
	}
	t.Logf("figure 2: cost %g, LP bound %g", rep.Cost, lb)
}

// TestOracleChainOnTiny is the full four-oracle chain on an instance small
// enough for everything: LP optimum <= brute-force optimum <= solver cost ==
// naive cost == Lemma-1 metric value.
func TestOracleChainOnTiny(t *testing.T) {
	_, _, res := solveTiny(t)
	rep := Result(res)
	lb := LowerBound(context.Background(), rep, res.Partition, 0)
	BruteForce(rep, res.Partition)
	if !rep.OK() {
		t.Fatal(rep.Err())
	}
	t.Logf("tiny: cost %g, LP bound %g", rep.Cost, lb)
}

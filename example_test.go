package repro_test

import (
	"fmt"
	"math"

	"repro"
)

// ExampleFlow partitions the paper's worked example and prints the cost it
// finds — the LP-certified optimum.
func ExampleFlow() {
	h, spec, _ := repro.Figure2()
	res, err := repro.Flow(h, spec, repro.FlowOptions{Iterations: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.0f\n", res.Cost)
	// Output: cost 20
}

// ExampleBinaryTreeSpec builds the paper's experimental hierarchy: a full
// binary tree with doubling level weights.
func ExampleBinaryTreeSpec() {
	spec, err := repro.BinaryTreeSpec(160, 2, repro.GeometricWeights(2, 2), 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Println("C =", spec.Capacity)
	fmt.Println("K =", spec.Branch)
	fmt.Println("w =", spec.Weight)
	// Output:
	// C = [40 80]
	// K = [2 2]
	// w = [1 2]
}

// ExampleExactLowerBound certifies a partition against the spreading-metric
// LP optimum (Lemma 2).
func ExampleExactLowerBound() {
	h, spec, _ := repro.Figure2()
	lb, err := repro.ExactLowerBound(h, spec, 0)
	if err != nil {
		panic(err)
	}
	opt := repro.Figure2Partition()
	tight := math.Abs(lb.Value-opt.Cost()) < 1e-6
	fmt.Printf("bound %.0f <= cost %.0f (tight: %v)\n", lb.Value, opt.Cost(), tight)
	// Output: bound 20 <= cost 20 (tight: true)
}

// ExampleMetricFromPartition derives the spreading metric a partition
// induces (Lemma 1): cut edges carry their per-capacity cost as length.
func ExampleMetricFromPartition() {
	opt := repro.Figure2Partition()
	m := repro.MetricFromPartition(opt)
	fmt.Printf("LP value %.0f equals partition cost %.0f\n", m.Value(), opt.Cost())
	// Output: LP value 20 equals partition cost 20
}

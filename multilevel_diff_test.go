// Differential quality gate for the multilevel V-cycle: on the paper's five
// ISCAS85-class circuits, the coarsen/solve/uncoarsen pipeline must land
// within 10% of flat FLOW's cost. The V-cycle exists to make large netlists
// tractable; this test pins that the speed does not come out of solution
// quality at the scale the paper actually reports, and that every partition
// it serves still passes independent certification.
package repro_test

import (
	"testing"

	"repro"
	"repro/internal/verify"
)

func TestMultilevelWithinFlatFlowBound(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is minutes-long; run without -short")
	}
	const slack = 1.10
	for _, cs := range repro.ISCAS85Circuits {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			t.Parallel()
			h := repro.GenerateCircuit(cs, 1)
			spec, err := repro.BinaryTreeSpec(h.TotalSize(), 4, repro.GeometricWeights(4, 2), 1.1)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := repro.Flow(h, spec, repro.FlowOptions{Iterations: 2, Seed: 1})
			if err != nil {
				t.Fatalf("flat FLOW: %v", err)
			}
			if rep := verify.Result(flat); !rep.OK() {
				t.Fatalf("flat FLOW failed certification: %v", rep.Err())
			}
			ml, err := repro.Multilevel(h, spec, repro.MultilevelOptions{Seed: 1})
			if err != nil {
				t.Fatalf("multilevel: %v", err)
			}
			if rep := verify.Result(ml); !rep.OK() {
				t.Fatalf("multilevel failed certification: %v", rep.Err())
			}
			t.Logf("%s: flat=%.0f multilevel=%.0f ratio=%.3f", cs.Name, flat.Cost, ml.Cost, ml.Cost/flat.Cost)
			if ml.Cost > slack*flat.Cost {
				t.Errorf("multilevel cost %.0f exceeds %.2fx flat FLOW cost %.0f (ratio %.3f)",
					ml.Cost, slack, flat.Cost, ml.Cost/flat.Cost)
			}
		})
	}
}

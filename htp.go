// Package repro is a reproduction of "A Network Flow Approach for
// Hierarchical Tree Partitioning" (Ming-Ter Kuo and Chung-Kuan Cheng,
// DAC 1997): partitioning circuit netlists into tree hierarchies — boards,
// chips, blocks — minimizing the level-weighted I/O pin cost
//
//	cost(P) = Σ_e Σ_l w_l · span(e, l) · c(e).
//
// The package is a facade over the implementation in internal/: it
// re-exports the netlist model, the HTP problem spec and partition types,
// the paper's FLOW algorithm (spreading metrics computed by stochastic flow
// injection + metric-guided top-down construction), the GFM/RFM baselines,
// FM-based refinement, the exact LP lower bound of Lemma 2, and the
// benchmark circuit generators.
//
// Quickstart:
//
//	h := repro.GenerateCircuit(repro.ISCAS85Circuits[0], 1)
//	spec, _ := repro.BinaryTreeSpec(h.TotalSize(), 4, repro.GeometricWeights(4, 2), 1.1)
//	res, err := repro.Flow(h, spec, repro.FlowOptions{})
//	// res.Partition holds the tree and leaf assignment; res.Cost the pin cost.
package repro

import (
	"context"
	"io"
	"log/slog"

	"repro/internal/anytime"
	"repro/internal/circuits"
	"repro/internal/fm"
	"repro/internal/hierarchy"
	"repro/internal/htp"
	"repro/internal/hypergraph"
	"repro/internal/inject"
	"repro/internal/metric"
	"repro/internal/obs"
	"repro/internal/ratiocut"
	"repro/internal/treemap"
	"repro/internal/verify"
)

// ---- Anytime contract (internal/anytime) ----
//
// Every solver has a *Ctx variant taking a context.Context. When the
// context is cancelled or its deadline passes, iterative solvers return the
// best valid partition found so far — Result.Stop records why the run
// ended — and error (wrapping ErrNoPartition) only when nothing valid
// exists yet. The context-free entry points delegate to
// context.Background().

// StopReason records why a solver run ended.
type StopReason = anytime.Stop

// Stop reasons reported in Result.Stop and friends.
const (
	// StopConverged: the run completed its full schedule.
	StopConverged = anytime.StopConverged
	// StopMaxRounds: an iteration cap ended the run before convergence.
	StopMaxRounds = anytime.StopMaxRounds
	// StopDeadline: the context deadline passed; the result is best-so-far.
	StopDeadline = anytime.StopDeadline
	// StopCancelled: the context was cancelled; the result is best-so-far.
	StopCancelled = anytime.StopCancelled
)

// Sentinel errors classifying every failure mode; match with errors.Is.
var (
	// ErrInvalidSpec: the problem spec or input netlist is malformed.
	ErrInvalidSpec = anytime.ErrInvalidSpec
	// ErrOversizedNode: a single node exceeds the leaf capacity C_0.
	ErrOversizedNode = anytime.ErrOversizedNode
	// ErrInfeasible: no partition can satisfy the constraints.
	ErrInfeasible = anytime.ErrInfeasible
	// ErrNoPartition: the run ended before any valid partition existed.
	ErrNoPartition = anytime.ErrNoPartition
)

// ---- Telemetry (internal/obs) ----
//
// Every solver option struct (FlowOptions, InjectOptions, RFMOptions,
// GFMOptions, RefineOptions, TreeMapOptions) carries an Observer field;
// FlowOptions additionally takes a ProgressFunc. Telemetry is observe-only
// and zero-cost when disabled: with a nil Observer the solvers pay one nil
// check per round and allocate nothing, and attaching one cannot change
// any computed result. Runs also tick expvar process counters —
// "htp.metric.rounds", "htp.metric.injections", "htp.metric.growths",
// "htp.solver.salvages" — for long-running services.

// Observer consumes solver trace events. Implementations need no locking:
// solvers emit from one goroutine, funnelling parallel work first.
type Observer = obs.Observer

// TraceEvent is one telemetry record; TraceKind names its type
// ("metric-round", "build-done", "stop", ...). The JSONL schema is the
// JSON encoding of TraceEvent, one object per line.
type (
	TraceEvent = obs.Event
	TraceKind  = obs.Kind
)

// ProgressFunc receives coarse Progress snapshots (phase, round, best
// cost) at round-level frequency — the lightweight alternative to a full
// Observer for live display.
type (
	ProgressFunc = obs.ProgressFunc
	Progress     = obs.Progress
)

// JSONLTrace writes events as JSON Lines — the `htpart -trace` format.
// Call Flush when the run is done.
type JSONLTrace = obs.JSONLSink

// NewJSONLTrace returns a trace sink writing JSON Lines to w.
func NewJSONLTrace(w io.Writer) *JSONLTrace { return obs.NewJSONLSink(w) }

// NewSlogObserver returns an observer logging events through l
// (slog.Default() when nil): round-level events at Debug, completions and
// the terminal stop at Info.
func NewSlogObserver(l *slog.Logger) Observer { return obs.NewSlogSink(l) }

// MultiObserver fans events out to several observers; nil entries drop.
func MultiObserver(sinks ...Observer) Observer { return obs.Multi(sinks...) }

// RunCollector folds an event stream into a RunReport (final cost, stop
// reason, per-phase wall time, round/injection totals) — the per-run JSON
// report the CLIs emit.
type (
	RunCollector = obs.Collector
	RunReport    = obs.RunReport
)

// NewRunCollector returns an empty run collector.
func NewRunCollector() *RunCollector { return obs.NewCollector() }

// ---- Netlist model (internal/hypergraph) ----

// Hypergraph is a circuit netlist: nodes (cells) with sizes and nets with
// capacities.
type Hypergraph = hypergraph.Hypergraph

// NetlistBuilder accumulates nodes and nets and produces a validated
// Hypergraph.
type NetlistBuilder = hypergraph.Builder

// NodeID identifies a netlist node; NetID a net.
type (
	NodeID = hypergraph.NodeID
	NetID  = hypergraph.NetID
)

// NewNetlistBuilder returns an empty netlist builder.
func NewNetlistBuilder() *NetlistBuilder { return hypergraph.NewBuilder() }

// ReadNetlist parses a netlist in the extended hMETIS format.
func ReadNetlist(path string) (*Hypergraph, error) { return hypergraph.ReadFile(path) }

// NetlistStats summarizes a netlist (Table 1 columns and more).
type NetlistStats = hypergraph.Stats

// ComputeNetlistStats gathers summary statistics of a netlist.
func ComputeNetlistStats(h *Hypergraph) NetlistStats { return hypergraph.ComputeStats(h) }

// ---- HTP problem and partitions (internal/hierarchy) ----

// Spec holds the per-level HTP parameters: size bounds C_l, branch bounds
// K_l, and cost weights w_l.
type Spec = hierarchy.Spec

// Partition is a hierarchical tree partition P = (T, {V_q}).
type Partition = hierarchy.Partition

// Tree is the layered partition hierarchy.
type Tree = hierarchy.Tree

// BinaryTreeSpec builds the paper's experimental setup: a full binary tree
// of the given height with capacities sized for balanced splits with slack.
func BinaryTreeSpec(totalSize int64, height int, weights []float64, slack float64) (Spec, error) {
	return hierarchy.BinaryTreeSpec(totalSize, height, weights, slack)
}

// GeometricWeights returns level weights w_l = base^l.
func GeometricWeights(height int, base float64) []float64 {
	return hierarchy.GeometricWeights(height, base)
}

// ---- Algorithms (internal/htp, internal/fm) ----

// Result reports a partitioning run: the partition, its cost, and
// diagnostics.
type Result = htp.Result

// FlowOptions tunes the paper's Algorithm 1.
type FlowOptions = htp.FlowOptions

// BuildOptions tunes the top-down construction (Algorithm 3) inside Flow.
type BuildOptions = htp.BuildOptions

// RFMOptions and GFMOptions tune the DAC'96 baselines.
type (
	RFMOptions = htp.RFMOptions
	GFMOptions = htp.GFMOptions
)

// RefineOptions tunes the FM-based hierarchical refinement.
type RefineOptions = fm.RefineOptions

// Flow runs the network-flow constructive algorithm (Algorithm 1): N
// iterations of spreading-metric computation plus metric-guided top-down
// construction, returning the best partition.
func Flow(h *Hypergraph, spec Spec, opt FlowOptions) (*Result, error) {
	return htp.Flow(h, spec, opt)
}

// FlowCtx is Flow under a context: on cancellation or deadline it returns
// the best valid partition found so far with Result.Stop set, erroring
// (wrapping ErrNoPartition) only when no iteration produced one.
func FlowCtx(ctx context.Context, h *Hypergraph, spec Spec, opt FlowOptions) (*Result, error) {
	return htp.FlowCtx(ctx, h, spec, opt)
}

// FlowPlus is Flow followed by FM refinement (the paper's FLOW+); it also
// returns the pre-refinement cost.
func FlowPlus(h *Hypergraph, spec Spec, opt FlowOptions, ref RefineOptions) (*Result, float64, error) {
	return htp.FlowPlus(h, spec, opt, ref)
}

// FlowPlusCtx is FlowPlus under a context; an interrupted refinement keeps
// the best cost reached.
func FlowPlusCtx(ctx context.Context, h *Hypergraph, spec Spec, opt FlowOptions, ref RefineOptions) (*Result, float64, error) {
	return htp.FlowPlusCtx(ctx, h, spec, opt, ref)
}

// BuildFromMetric runs the metric-guided top-down construction alone
// (Algorithm 3): carve the hierarchy from a spreading metric already in
// hand. Flow composes this with ComputeSpreadingMetric; exposing the
// construction separately lets callers reuse one (possibly expensive)
// metric across several Build configurations, and lets benchmarks time
// Algorithm 3 without the dominating Algorithm 2 in front of it.
func BuildFromMetric(h *Hypergraph, spec Spec, m *SpreadingMetric, opt BuildOptions) (*Partition, error) {
	return htp.Build(h, spec, m.D, opt)
}

// BuildFromMetricCtx is BuildFromMetric under a context. A half-built
// partition is not a valid one, so cancellation returns an error wrapping
// ErrNoPartition and the context cause rather than a partial tree.
func BuildFromMetricCtx(ctx context.Context, h *Hypergraph, spec Spec, m *SpreadingMetric, opt BuildOptions) (*Partition, error) {
	return htp.BuildCtx(ctx, h, spec, m.D, opt)
}

// RFM runs the top-down recursive FM baseline; RFMPlus adds refinement.
func RFM(h *Hypergraph, spec Spec, opt RFMOptions) (*Result, error) {
	return htp.RFM(h, spec, opt)
}

// RFMCtx is RFM under a context.
func RFMCtx(ctx context.Context, h *Hypergraph, spec Spec, opt RFMOptions) (*Result, error) {
	return htp.RFMCtx(ctx, h, spec, opt)
}

// RFMPlus is RFM followed by FM refinement (RFM+).
func RFMPlus(h *Hypergraph, spec Spec, opt RFMOptions, ref RefineOptions) (*Result, float64, error) {
	return htp.RFMPlus(h, spec, opt, ref)
}

// RFMPlusCtx is RFMPlus under a context.
func RFMPlusCtx(ctx context.Context, h *Hypergraph, spec Spec, opt RFMOptions, ref RefineOptions) (*Result, float64, error) {
	return htp.RFMPlusCtx(ctx, h, spec, opt, ref)
}

// GFM runs the bottom-up grouping baseline; GFMPlus adds refinement.
func GFM(h *Hypergraph, spec Spec, opt GFMOptions) (*Result, error) {
	return htp.GFM(h, spec, opt)
}

// GFMCtx is GFM under a context.
func GFMCtx(ctx context.Context, h *Hypergraph, spec Spec, opt GFMOptions) (*Result, error) {
	return htp.GFMCtx(ctx, h, spec, opt)
}

// GFMPlus is GFM followed by FM refinement (GFM+).
func GFMPlus(h *Hypergraph, spec Spec, opt GFMOptions, ref RefineOptions) (*Result, float64, error) {
	return htp.GFMPlus(h, spec, opt, ref)
}

// GFMPlusCtx is GFMPlus under a context.
func GFMPlusCtx(ctx context.Context, h *Hypergraph, spec Spec, opt GFMOptions, ref RefineOptions) (*Result, float64, error) {
	return htp.GFMPlusCtx(ctx, h, spec, opt, ref)
}

// MultilevelOptions tunes the multilevel V-cycle: coarsening, the
// coarse-level construction strategy, and per-level refinement.
type MultilevelOptions = htp.MultilevelOptions

// CoarseStage is the pluggable coarse-level constructor of the multilevel
// pipeline; FLOW, RFM, GFM and custom constructors all fit.
type CoarseStage = htp.CoarseStage

// Multilevel runs the multilevel V-cycle — deterministic heavy-edge
// coarsening, a coarse-level construction by the configured strategy
// (FLOW by default), and boundary-localized FM refinement on the way back
// down. The scalable route for large netlists; see README "Scaling to
// large netlists".
func Multilevel(h *Hypergraph, spec Spec, opt MultilevelOptions) (*Result, error) {
	return htp.Multilevel(h, spec, opt)
}

// MultilevelCtx is Multilevel under a context, with FLOW's anytime
// contract: cancellation mid-descent salvages the best partition reached.
func MultilevelCtx(ctx context.Context, h *Hypergraph, spec Spec, opt MultilevelOptions) (*Result, error) {
	return htp.MultilevelCtx(ctx, h, spec, opt)
}

// Refine improves a partition in place by FM-style hierarchical moves and
// returns the final cost and total improvement.
func Refine(p *Partition, opt RefineOptions) (cost, improvement float64) {
	return fm.RefineHierarchical(p, opt)
}

// RefineCtx is Refine under a context; cancellation stops the passes early
// and returns the best cost reached (the partition stays valid throughout).
func RefineCtx(ctx context.Context, p *Partition, opt RefineOptions) (cost, improvement float64) {
	return fm.RefineHierarchicalCtx(ctx, p, opt)
}

// FlowRefineOptions tunes flow-based pairwise refinement; see
// internal/flowrefine for the corridor construction, acceptance rule, and
// determinism contract.
type FlowRefineOptions = htp.FlowRefineOptions

// FlowRefineStats reports what a flow refinement run did.
type FlowRefineStats = htp.FlowRefineStats

// FlowRefine improves a partition in place by flow-based pairwise
// refinement: adjacent block pairs are re-cut with corridor min-cuts, and
// move batches are accepted only when they lower the hierarchical cost
// within the K_l/C_l bounds. Unlike the internal entry points, the facade
// certifies every accepted batch with internal/verify unless the caller
// supplied their own Certify hook.
func FlowRefine(p *Partition, opt FlowRefineOptions) (cost, improvement float64, stats FlowRefineStats, err error) {
	return FlowRefineCtx(context.Background(), p, opt)
}

// FlowRefineCtx is FlowRefine under a context; cancellation stops between
// move batches and returns the best cost reached (the partition stays valid
// throughout).
func FlowRefineCtx(ctx context.Context, p *Partition, opt FlowRefineOptions) (cost, improvement float64, stats FlowRefineStats, err error) {
	if opt.Certify == nil {
		opt.Certify = verify.Certifier()
	}
	return htp.FlowRefineCtx(ctx, p, opt)
}

// ---- Spreading metrics and bounds (internal/metric, internal/inject) ----

// SpreadingMetric is a fractional length assignment d(e) over nets.
type SpreadingMetric = metric.Metric

// InjectOptions tunes the stochastic flow injection (Algorithm 2).
type InjectOptions = inject.Options

// InjectStats reports the flow-injection work.
type InjectStats = inject.Stats

// ComputeSpreadingMetric runs Algorithm 2: an approximate spreading metric
// by stochastic flow injection.
func ComputeSpreadingMetric(h *Hypergraph, spec Spec, opt InjectOptions) (*SpreadingMetric, InjectStats, error) {
	return inject.ComputeMetric(h, spec, opt)
}

// ComputeSpreadingMetricCtx is ComputeSpreadingMetric under a context. On
// cancellation it returns the partial metric computed so far (any
// intermediate length assignment is a usable construction guide) together
// with a non-nil error wrapping the context cause.
func ComputeSpreadingMetricCtx(ctx context.Context, h *Hypergraph, spec Spec, opt InjectOptions) (*SpreadingMetric, InjectStats, error) {
	return inject.ComputeMetricCtx(ctx, h, spec, opt)
}

// CheckSpreadingMetric verifies the spreading constraints; nil means
// feasible.
func CheckSpreadingMetric(m *SpreadingMetric, spec Spec) *metric.Violation {
	return metric.Check(m, spec)
}

// MetricFromPartition derives the metric induced by a partition (Lemma 1):
// d(e) = cost(e)/c(e).
func MetricFromPartition(p *Partition) *SpreadingMetric { return metric.FromPartition(p) }

// LowerBoundResult reports an exact LP lower-bound computation.
type LowerBoundResult = metric.LowerBoundResult

// ExactLowerBound computes the optimum of the spreading-metric LP by
// cutting planes (Lemma 2) — small instances only.
func ExactLowerBound(h *Hypergraph, spec Spec, maxRounds int) (*LowerBoundResult, error) {
	return metric.ExactLowerBound(h, spec, maxRounds)
}

// ExactLowerBoundCtx is ExactLowerBound under a context. Every relaxation
// optimum already lower-bounds the LP, so cancellation is not an error: the
// result carries the best bound proven so far with Stop set.
func ExactLowerBoundCtx(ctx context.Context, h *Hypergraph, spec Spec, maxRounds int) (*LowerBoundResult, error) {
	return metric.ExactLowerBoundCtx(ctx, h, spec, maxRounds)
}

// BruteForce finds a cost-optimal partition exhaustively — a test oracle
// for tiny instances.
func BruteForce(h *Hypergraph, spec Spec) (*Partition, float64, error) {
	return htp.BruteForce(h, spec)
}

// ---- Benchmark circuits (internal/circuits) ----

// CircuitSpec describes an ISCAS85-class benchmark circuit by its published
// size statistics.
type CircuitSpec = circuits.CircuitSpec

// ISCAS85Circuits lists the paper's five test cases.
var ISCAS85Circuits = circuits.ISCAS85

// GenerateCircuit builds a deterministic synthetic netlist with the spec's
// gate count and clustered, Rent-like connectivity (the documented stand-in
// for the unavailable MCNC files).
func GenerateCircuit(spec CircuitSpec, seed int64) *Hypergraph {
	return circuits.Generate(spec, seed)
}

// CircuitByName returns the ISCAS85-class spec with the given name.
func CircuitByName(name string) (CircuitSpec, error) { return circuits.ByName(name) }

// ScaledCircuit returns a synthetic spec with the given gate count — the
// scale rungs above the ISCAS85 suite used by the multilevel scaling
// experiments. Generate it with GenerateCircuit, or stream it to disk with
// StreamCircuit when the instance should not be materialized.
func ScaledCircuit(gates int) CircuitSpec { return circuits.Scaled(gates) }

// StreamCircuit writes the spec's netlist in the extended hMETIS format
// without building a Hypergraph; bytes are identical to
// GenerateCircuit(spec, seed).Write(w).
func StreamCircuit(spec CircuitSpec, seed int64, w io.Writer) error {
	return circuits.Stream(spec, seed, w)
}

// Figure2 reconstructs the paper's worked example graph, spec, and intended
// leaf groups.
func Figure2() (*Hypergraph, Spec, [][]NodeID) { return circuits.Figure2() }

// Figure2Partition builds the worked example's optimal partition (cost 20).
func Figure2Partition() *Partition { return circuits.Figure2Partition() }

// ---- Related formulations (internal/ratiocut, internal/treemap) ----

// RatioCutOptions tunes the stochastic flow-injection ratio-cut
// bipartitioner (the Yeh-Cheng-Lin / Lang-Rao lineage the paper builds on).
type RatioCutOptions = ratiocut.Options

// RatioCutResult reports a ratio-cut bipartition.
type RatioCutResult = ratiocut.Result

// RatioCut bipartitions the netlist minimizing cut/(s(A)·s(B)) — the
// objective that folds size balance into the cost instead of constraining
// it, contrasted against HTP in the paper's introduction.
func RatioCut(h *Hypergraph, opt RatioCutOptions) *RatioCutResult {
	return ratiocut.Bipartition(h, opt)
}

// RatioCutCtx is RatioCut under a context; cancellation shortens the
// injection and sweep schedules but the result always has two non-empty
// sides.
func RatioCutCtx(ctx context.Context, h *Hypergraph, opt RatioCutOptions) *RatioCutResult {
	return ratiocut.BipartitionCtx(ctx, h, opt)
}

// HostTree is a fixed host tree for Vijayan-style min-cost tree
// partitioning (paper ref [16]): every vertex can hold logic up to its
// capacity, and nets pay the weight of the minimal spanning subtree of
// their host vertices.
type HostTree = treemap.HostTree

// NewHostTree creates a host tree with the given vertex capacities.
func NewHostTree(capacities []int64) *HostTree { return treemap.NewHostTree(capacities) }

// TreeMapping assigns netlist nodes to host-tree vertices.
type TreeMapping = treemap.Mapping

// TreeMapOptions tunes MapOntoTree.
type TreeMapOptions = treemap.Options

// MapOntoTree maps the netlist onto a fixed host tree, minimizing global
// routing cost subject to vertex capacities.
func MapOntoTree(h *Hypergraph, t *HostTree, opt TreeMapOptions) (*TreeMapping, error) {
	return treemap.Map(h, t, opt)
}

// MapOntoTreeCtx is MapOntoTree under a context: cancellation during the
// recursive assignment errors (wrapping ErrNoPartition); cancellation
// during improvement returns the current valid mapping.
func MapOntoTreeCtx(ctx context.Context, h *Hypergraph, t *HostTree, opt TreeMapOptions) (*TreeMapping, error) {
	return treemap.MapCtx(ctx, h, t, opt)
}

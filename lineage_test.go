// Facade tests for the related-formulation APIs (ratio cut and fixed-tree
// mapping) and the parallel FLOW switch.
package repro_test

import (
	"math"
	"testing"

	"repro"
)

func TestRatioCutFacade(t *testing.T) {
	b := repro.NewNetlistBuilder()
	for i := 0; i < 10; i++ {
		b.AddNode("", 1)
	}
	for c := 0; c < 2; c++ {
		base := repro.NodeID(c * 5)
		for i := repro.NodeID(0); i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddNet("", 1, base+i, base+j)
			}
		}
	}
	b.AddNet("bridge", 1, 0, 5)
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := repro.RatioCut(h, repro.RatioCutOptions{})
	if res.Cut != 1 {
		t.Fatalf("cut = %g, want the bridge", res.Cut)
	}
	if math.Abs(res.Ratio-1.0/25) > 1e-12 {
		t.Fatalf("ratio = %g", res.Ratio)
	}
}

func TestMapOntoTreeFacade(t *testing.T) {
	h := smallCircuit(t)
	per := h.TotalSize()/4 + 8
	ht := repro.NewHostTree([]int64{per, per, per, per})
	ht.AddEdge(0, 1, 1)
	ht.AddEdge(1, 2, 1)
	ht.AddEdge(2, 3, 1)
	m, err := repro.MapOntoTree(h, ht, repro.TreeMapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Cost() <= 0 {
		t.Fatalf("mapping cost = %g; a connected design must route something", m.Cost())
	}
}

func TestParallelFlowFacade(t *testing.T) {
	h := smallCircuit(t)
	spec, err := repro.BinaryTreeSpec(h.TotalSize(), 3, repro.GeometricWeights(3, 2), 1.15)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := repro.Flow(h, spec, repro.FlowOptions{Iterations: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	par, err := repro.Flow(h, spec, repro.FlowOptions{Iterations: 3, Seed: 21, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Cost != par.Cost {
		t.Fatalf("parallel %g != sequential %g", par.Cost, seq.Cost)
	}
}
